// Unified cross-layer metrics: named counters, gauges and fixed-bucket
// log-scale histograms behind one registry.
//
// Design constraints, in order:
//  - The hot path is an increment from a detector driver thread, a shard
//    worker or a transport receive loop. Every instrument is a plain
//    relaxed atomic, so recording is lock-free and wait-free; the registry
//    mutex is only taken at name-resolution time, and components cache the
//    returned reference (references are stable for the registry's
//    lifetime — instruments live in node-based maps and are never erased).
//  - Collection must be schedule-neutral: no RNG, no event scheduling, no
//    allocation on the record path. Snapshotting allocates, but only the
//    reader does it.
//  - Histograms must cover nanosecond-scale latencies through multi-second
//    tails in O(1) memory with bounded relative error: 16 exact buckets
//    for values < 16, then 4 sub-buckets per power of two (≤ 12.5% bucket
//    width), 256 buckets total for the full uint64 range.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mmrfd::obs {

// Monotonically increasing event count. Relaxed: totals are read at
// snapshot time, never used for inter-thread ordering.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-write-wins instantaneous value (buffer sizes, configured limits).
class Gauge {
 public:
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Fixed-layout log-scale histogram over uint64 samples.
//
// Bucket layout: values 0..15 get one exact bucket each; for v >= 16 the
// octave is floor(log2 v) in 4..63 and each octave is split into 4 equal
// sub-buckets, indexed 16 + (octave-4)*4 + sub. That is 16 + 60*4 = 256
// buckets covering the whole uint64 range with <= 2^(octave-2)-wide
// buckets (relative width 1/4 of the value's magnitude).
class Histogram {
 public:
  static constexpr std::uint32_t kBuckets = 256;
  static constexpr std::uint64_t kLinearMax = 16;  // exact below this

  void observe(std::uint64_t value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(std::uint32_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  static std::uint32_t bucket_index(std::uint64_t value) {
    if (value < kLinearMax) return static_cast<std::uint32_t>(value);
    const std::uint32_t octave =
        63u - static_cast<std::uint32_t>(std::countl_zero(value));
    const std::uint32_t sub =
        static_cast<std::uint32_t>((value >> (octave - 2)) & 3u);
    return 16u + (octave - 4u) * 4u + sub;
  }

  // Inclusive lower bound of a bucket.
  static std::uint64_t bucket_lower(std::uint32_t index) {
    if (index < kLinearMax) return index;
    const std::uint32_t octave = 4u + (index - 16u) / 4u;
    const std::uint32_t sub = (index - 16u) % 4u;
    return static_cast<std::uint64_t>(4u + sub) << (octave - 2u);
  }

  // Width of a bucket (bucket covers [lower, lower + width)).
  static std::uint64_t bucket_width(std::uint32_t index) {
    if (index < kLinearMax) return 1;
    const std::uint32_t octave = 4u + (index - 16u) / 4u;
    return std::uint64_t{1} << (octave - 2u);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

// ---------------------------------------------------------------------------
// Snapshots: plain-data copies taken by readers (report writers, the
// supervisor aggregator, bench emitters). Sorted by name, comparable,
// mergeable across nodes/shards.

struct CounterSnapshot {
  std::string name;
  std::uint64_t value{0};
  friend bool operator==(const CounterSnapshot&,
                         const CounterSnapshot&) = default;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value{0};
  friend bool operator==(const GaugeSnapshot&,
                         const GaugeSnapshot&) = default;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count{0};
  std::uint64_t sum{0};
  // Sparse non-zero buckets as (index, count), ascending by index.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  // Linear interpolation within the containing bucket; q in [0, 1].
  double percentile(double q) const;

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

struct RegistrySnapshot {
  std::vector<CounterSnapshot> counters;      // sorted by name
  std::vector<GaugeSnapshot> gauges;          // sorted by name
  std::vector<HistogramSnapshot> histograms;  // sorted by name

  const CounterSnapshot* find_counter(std::string_view name) const;
  const GaugeSnapshot* find_gauge(std::string_view name) const;
  const HistogramSnapshot* find_histogram(std::string_view name) const;
  std::uint64_t counter_value(std::string_view name) const {
    const CounterSnapshot* c = find_counter(name);
    return c ? c->value : 0;
  }

  // Element-wise accumulate `other` into this snapshot: counters, gauges
  // and histogram buckets sum (gauges sum too — cluster-wide totals of
  // per-node instantaneous values, e.g. receive-buffer bytes).
  void merge(const RegistrySnapshot& other);

  // One `name value` line per instrument; histograms add count/sum/p50/p99.
  std::string to_text() const;
  // Stable single-line JSON object: {"counters":{...},"gauges":{...},
  // "histograms":{name:{"count":c,"sum":s,"buckets":[[i,c],...]}}}.
  std::string to_json() const;

  friend bool operator==(const RegistrySnapshot&,
                         const RegistrySnapshot&) = default;
};

// ---------------------------------------------------------------------------

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create by name. Returned references stay valid for the
  // registry's lifetime; call once and cache the reference.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  RegistrySnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace mmrfd::obs
