#include "obs/metrics_registry.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mmrfd::obs {
namespace {

// Instrument names are dotted ASCII identifiers, but the JSON emitter must
// not produce invalid output even for a hostile name.
void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

template <typename Snapshot>
const Snapshot* find_by_name(const std::vector<Snapshot>& sorted,
                             std::string_view name) {
  const auto it = std::lower_bound(
      sorted.begin(), sorted.end(), name,
      [](const Snapshot& s, std::string_view n) { return s.name < n; });
  return (it != sorted.end() && it->name == name) ? &*it : nullptr;
}

// Merge `from` into `into`, matching by name (both sorted); `combine`
// folds a source entry into an existing destination entry.
template <typename Snapshot, typename Combine>
void merge_sorted(std::vector<Snapshot>& into,
                  const std::vector<Snapshot>& from, Combine combine) {
  std::vector<Snapshot> out;
  out.reserve(into.size() + from.size());
  auto a = into.begin();
  auto b = from.begin();
  while (a != into.end() || b != from.end()) {
    if (b == from.end() || (a != into.end() && a->name < b->name)) {
      out.push_back(std::move(*a++));
    } else if (a == into.end() || b->name < a->name) {
      out.push_back(*b++);
    } else {
      combine(*a, *b);
      out.push_back(std::move(*a++));
      ++b;
    }
  }
  into = std::move(out);
}

}  // namespace

double HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based; walk the cumulative distribution.
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (const auto& [index, bucket_count] : buckets) {
    const std::uint64_t next = cumulative + bucket_count;
    if (static_cast<double>(next) >= target) {
      const double lower =
          static_cast<double>(Histogram::bucket_lower(index));
      const double width =
          static_cast<double>(Histogram::bucket_width(index));
      const double into_bucket =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(bucket_count);
      return lower + width * std::clamp(into_bucket, 0.0, 1.0);
    }
    cumulative = next;
  }
  // All mass consumed without reaching the target (q == 1 with rounding):
  // report the top of the last non-empty bucket.
  const std::uint32_t last = buckets.back().first;
  return static_cast<double>(Histogram::bucket_lower(last) +
                             Histogram::bucket_width(last));
}

const CounterSnapshot* RegistrySnapshot::find_counter(
    std::string_view name) const {
  return find_by_name(counters, name);
}

const GaugeSnapshot* RegistrySnapshot::find_gauge(
    std::string_view name) const {
  return find_by_name(gauges, name);
}

const HistogramSnapshot* RegistrySnapshot::find_histogram(
    std::string_view name) const {
  return find_by_name(histograms, name);
}

void RegistrySnapshot::merge(const RegistrySnapshot& other) {
  merge_sorted(counters, other.counters,
               [](CounterSnapshot& a, const CounterSnapshot& b) {
                 a.value += b.value;
               });
  merge_sorted(gauges, other.gauges,
               [](GaugeSnapshot& a, const GaugeSnapshot& b) {
                 a.value += b.value;
               });
  merge_sorted(histograms, other.histograms,
               [](HistogramSnapshot& a, const HistogramSnapshot& b) {
                 a.count += b.count;
                 a.sum += b.sum;
                 std::vector<std::pair<std::uint32_t, std::uint64_t>> merged;
                 merged.reserve(a.buckets.size() + b.buckets.size());
                 auto x = a.buckets.begin();
                 auto y = b.buckets.begin();
                 while (x != a.buckets.end() || y != b.buckets.end()) {
                   if (y == b.buckets.end() ||
                       (x != a.buckets.end() && x->first < y->first)) {
                     merged.push_back(*x++);
                   } else if (x == a.buckets.end() || y->first < x->first) {
                     merged.push_back(*y++);
                   } else {
                     merged.emplace_back(x->first, x->second + y->second);
                     ++x;
                     ++y;
                   }
                 }
                 a.buckets = std::move(merged);
               });
}

std::string RegistrySnapshot::to_text() const {
  std::ostringstream out;
  for (const CounterSnapshot& c : counters) {
    out << c.name << ' ' << c.value << '\n';
  }
  for (const GaugeSnapshot& g : gauges) {
    out << g.name << ' ' << g.value << '\n';
  }
  for (const HistogramSnapshot& h : histograms) {
    out << h.name << " count=" << h.count << " sum=" << h.sum
        << " p50=" << h.percentile(0.50) << " p99=" << h.percentile(0.99)
        << '\n';
  }
  return out.str();
}

std::string RegistrySnapshot::to_json() const {
  std::string out;
  out += "{\"counters\":{";
  bool first = true;
  for (const CounterSnapshot& c : counters) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, c.name);
    out.push_back(':');
    out += std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeSnapshot& g : gauges) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, g.name);
    out.push_back(':');
    out += std::to_string(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& h : histograms) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, h.name);
    out += ":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += std::to_string(h.sum);
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (const auto& [index, bucket_count] : h.buckets) {
      if (!first_bucket) out.push_back(',');
      first_bucket = false;
      out.push_back('[');
      out += std::to_string(index);
      out.push_back(',');
      out += std::to_string(bucket_count);
      out += "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  RegistrySnapshot snap;
  std::lock_guard lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = histogram->count();
    h.sum = histogram->sum();
    for (std::uint32_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t c = histogram->bucket_count(i);
      if (c != 0) h.buckets.emplace_back(i, c);
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

}  // namespace mmrfd::obs
