#include "obs/flight_recorder.h"

#include <chrono>
#include <fstream>
#include <ostream>

namespace mmrfd::obs {
namespace {

std::uint64_t wall_now_ns(const void*) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TraceClock wall_trace_clock() { return TraceClock{&wall_now_ns, nullptr}; }

std::string_view trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kRoundOpen:
      return "round_open";
    case TraceKind::kRoundClose:
      return "round_close";
    case TraceKind::kQueryTx:
      return "query_tx";
    case TraceKind::kQueryRx:
      return "query_rx";
    case TraceKind::kResponseTx:
      return "response_tx";
    case TraceKind::kResponseRx:
      return "response_rx";
    case TraceKind::kSuspectAdd:
      return "suspect_add";
    case TraceKind::kSuspectDrop:
      return "suspect_drop";
    case TraceKind::kNeedFullTx:
      return "need_full_tx";
    case TraceKind::kNeedFullRx:
      return "need_full_rx";
    case TraceKind::kResync:
      return "resync";
    case TraceKind::kGiveUpSkip:
      return "giveup_skip";
    case TraceKind::kResendWave:
      return "resend_wave";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity, TraceClock clock)
    : clock_(clock), ring_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::set_clock(TraceClock clock) {
  std::lock_guard lock(mutex_);
  clock_ = clock;
}

void FlightRecorder::record(TraceKind kind, std::uint32_t a,
                            std::uint32_t b) {
  std::lock_guard lock(mutex_);
  TraceRecord& slot = ring_[total_ % ring_.size()];
  slot.t_ns = clock_.now();
  slot.seq = total_;
  slot.a = a;
  slot.b = b;
  slot.kind = kind;
  ++total_;
}

std::vector<TraceRecord> FlightRecorder::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<TraceRecord> out;
  const std::uint64_t live =
      total_ < ring_.size() ? total_ : static_cast<std::uint64_t>(ring_.size());
  out.reserve(static_cast<std::size_t>(live));
  const std::uint64_t first = total_ - live;
  for (std::uint64_t s = first; s < total_; ++s) {
    out.push_back(ring_[s % ring_.size()]);
  }
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  std::lock_guard lock(mutex_);
  return total_;
}

void FlightRecorder::dump_text(std::ostream& out) const {
  for (const TraceRecord& r : snapshot()) {
    out << r.t_ns << " #" << r.seq << ' ' << trace_kind_name(r.kind)
        << " a=" << r.a << " b=" << r.b << '\n';
  }
}

bool FlightRecorder::dump_to_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  dump_text(out);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace mmrfd::obs
