#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <fstream>
#include <ostream>

namespace mmrfd::obs {
namespace {

std::uint64_t wall_now_ns(const void*) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TraceClock wall_trace_clock() { return TraceClock{&wall_now_ns, nullptr}; }

std::string_view trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kRoundOpen:
      return "round_open";
    case TraceKind::kRoundClose:
      return "round_close";
    case TraceKind::kQueryTx:
      return "query_tx";
    case TraceKind::kQueryRx:
      return "query_rx";
    case TraceKind::kResponseTx:
      return "response_tx";
    case TraceKind::kResponseRx:
      return "response_rx";
    case TraceKind::kSuspectAdd:
      return "suspect_add";
    case TraceKind::kSuspectDrop:
      return "suspect_drop";
    case TraceKind::kNeedFullTx:
      return "need_full_tx";
    case TraceKind::kNeedFullRx:
      return "need_full_rx";
    case TraceKind::kResync:
      return "resync";
    case TraceKind::kGiveUpSkip:
      return "giveup_skip";
    case TraceKind::kResendWave:
      return "resend_wave";
    case TraceKind::kQuorum:
      return "quorum";
    case TraceKind::kQueryTxSeq:
      return "query_tx_seq";
    case TraceKind::kResponseTxSeq:
      return "response_tx_seq";
    case TraceKind::kResponseRxSeq:
      return "response_rx_seq";
    case TraceKind::kPeerRound:
      return "peer_round";
    case TraceKind::kRelRetransmit:
      return "rel_retransmit";
    case TraceKind::kRelDuplicate:
      return "rel_duplicate";
  }
  return "unknown";
}

TraceKind trace_kind_from_name(std::string_view name) {
  for (std::uint8_t k = 1; k <= kMaxTraceKind; ++k) {
    const auto kind = static_cast<TraceKind>(k);
    if (trace_kind_name(kind) == name) return kind;
  }
  return static_cast<TraceKind>(0);
}

FlightRecorder::FlightRecorder(std::size_t capacity, TraceClock clock)
    : clock_(clock), ring_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::set_clock(TraceClock clock) {
  std::lock_guard lock(mutex_);
  clock_ = clock;
}

void FlightRecorder::record(TraceKind kind, std::uint32_t a,
                            std::uint32_t b) {
  std::lock_guard lock(mutex_);
  TraceRecord& slot = ring_[total_ % ring_.size()];
  slot.t_ns = clock_.now();
  slot.seq = total_;
  slot.a = a;
  slot.b = b;
  slot.kind = kind;
  ++total_;
}

std::vector<TraceRecord> FlightRecorder::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<TraceRecord> out;
  const std::uint64_t live =
      total_ < ring_.size() ? total_ : static_cast<std::uint64_t>(ring_.size());
  out.reserve(static_cast<std::size_t>(live));
  const std::uint64_t first = total_ - live;
  for (std::uint64_t s = first; s < total_; ++s) {
    out.push_back(ring_[s % ring_.size()]);
  }
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  std::lock_guard lock(mutex_);
  return total_;
}

void FlightRecorder::dump_text(std::ostream& out) const {
  for (const TraceRecord& r : snapshot()) {
    out << r.t_ns << " #" << r.seq << ' ' << trace_kind_name(r.kind)
        << " a=" << r.a << " b=" << r.b << '\n';
  }
}

bool FlightRecorder::dump_to_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  dump_text(out);
  out.flush();
  return static_cast<bool>(out);
}

namespace {

// Little-endian scalar append into a flat byte buffer (signal path: the
// buffer lives on the caller's stack, no allocation).
template <typename T>
void put_le(unsigned char* dst, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    dst[i] = static_cast<unsigned char>(v >> (8 * i));
  }
}

bool write_all(int fd, const unsigned char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool FlightRecorder::dump_binary_fd(int fd) const noexcept {
  // Deliberately lock-free: taking mutex_ inside a SIGSEGV handler could
  // self-deadlock if the fault happened under record(). At worst one slot
  // is torn mid-write; the loader's kind/seq validation drops it.
  unsigned char header[24];
  for (std::size_t i = 0; i < sizeof(kBinaryMagic); ++i) {
    header[i] = static_cast<unsigned char>(kBinaryMagic[i]);
  }
  put_le(header + 8, total_);
  put_le(header + 16, static_cast<std::uint64_t>(ring_.size()));
  if (!write_all(fd, header, sizeof(header))) return false;

  unsigned char rec[29];
  for (const TraceRecord& r : ring_) {
    put_le(rec + 0, r.t_ns);
    put_le(rec + 8, r.seq);
    put_le(rec + 16, r.a);
    put_le(rec + 20, r.b);
    rec[28] = static_cast<unsigned char>(r.kind);
    if (!write_all(fd, rec, sizeof(rec))) return false;
  }
  return true;
}

bool FlightRecorder::dump_binary_to_file(const std::string& path) const {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool ok = dump_binary_fd(fd);
  ::close(fd);
  return ok;
}

}  // namespace mmrfd::obs
