// TraceAssembler — stitches per-node flight-recorder rings into one
// cluster-wide causal timeline with detection-latency attribution.
//
// Input: one record stream per (node, incarnation) — loaded from SIGUSR1
// text dumps, crash-handler binary dumps, or taken straight from an
// in-memory FlightRecorder — plus the run's crash schedule. Output, per
// crash: the critical path crash → first missed query → each observer's
// permanent suspicion → cluster-stable detection, with every observer's
// detection latency split into three exactly-summing components:
//
//   round-pacing — time the detecting round had not yet opened (the crash
//                  fell inside the previous round / pacing window) plus
//                  the post-quorum pacing wait before finish_round;
//   resend-wait  — round open until the last resend wave the round needed
//                  (0 when the first transmission reached quorum);
//   wire         — last (re)transmission until the quorum instant: actual
//                  message propagation and response assembly.
//
// Clocks: each node stamps its ring with its own clock. The assembler
// estimates per-node skew NTP-style from matched query/response pairs —
// the kQueryTxSeq / kQueryRx / kResponseTxSeq / kResponseRxSeq causal
// records give (t1, t2, t3, t4) quadruples; the minimum-RTT sample per
// directed pair yields the midpoint offset estimate, and a min-RTT
// spanning tree (Prim) anchors every node to the lowest-id reference.
// With estimate_skew off (the simulator, where all rings share sim time)
// alignment is the identity and assembled latencies reproduce
// metrics::Analysis exactly — the differential test that certifies the
// assembler before it is trusted on live UDP dumps.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/flight_recorder.h"

namespace mmrfd::obs {

/// One (node, incarnation) record stream. Incarnations of the same node
/// are merged in increasing-incarnation order (a re-exec'd node's ring
/// continues, not replaces, its predecessor's timeline).
struct TraceNodeInput {
  std::uint32_t node{0};
  std::uint32_t incarnation{0};
  std::vector<TraceRecord> records;
};

struct AssemblerOptions {
  /// Cluster size (0 = infer as max node id + 1).
  std::uint32_t n{0};
  /// Estimate per-node clock skew from matched query/response pairs.
  /// Off = all rings share one clock frame (the simulator's ground truth).
  bool estimate_skew{true};
  /// Subtracted from every record stamp before alignment, translating
  /// wall-clock rings into the supervisor's origin-relative frame (the
  /// frame crash times are stamped in). 0 for simulator rings.
  std::uint64_t origin_ns{0};
  /// Keep the merged, aligned record stream in the result (timeline CLI).
  bool keep_timeline{false};
};

/// Estimated clock offset of one node relative to the reference node
/// (lowest node id present): aligned_t = local_t - offset_ns.
struct SkewEstimate {
  std::uint32_t node{0};
  std::int64_t offset_ns{0};
  std::uint64_t min_rtt_ns{0};  ///< RTT of the spanning-tree edge used
  std::size_t samples{0};       ///< matched quadruples involving this node
  bool reachable{true};         ///< false = no matched path to reference
};

/// One observer's detection of one crash, with the latency attribution.
/// pacing + resend_wait + wire == latency, exactly (negative latencies —
/// a pre-crash suspicion that stuck — degenerate to pacing == latency).
struct ObserverBreakdown {
  std::uint32_t observer{0};
  std::int64_t detect_ns{0};   ///< aligned instant of the final suspicion
  std::int64_t latency_ns{0};  ///< detect - crash (raw, can be negative)
  std::int64_t pacing_ns{0};
  std::int64_t resend_wait_ns{0};
  std::int64_t wire_ns{0};
  std::uint32_t round_seq{0};     ///< the detecting round at this observer
  std::uint32_t resend_waves{0};  ///< waves the detecting round needed
};

/// Critical path of one crash across the whole cluster.
struct CrashTimeline {
  std::uint32_t victim{0};
  std::int64_t crash_ns{0};
  /// Last aligned instant any observer heard from the victim.
  std::optional<std::int64_t> last_heard_ns;
  /// First aligned query transmission to the victim at/after the crash —
  /// the first response that will never come.
  std::optional<std::int64_t> first_missed_ns;
  std::vector<ObserverBreakdown> observers;  ///< detecting observers only
  /// Cluster-stable instant (every observer detected); unset otherwise.
  std::optional<std::int64_t> stable_ns;
  std::uint32_t undetected{0};  ///< observers with no permanent suspicion
};

/// One merged-timeline entry (populated only with keep_timeline).
struct TimelineEvent {
  std::int64_t t_ns{0};  ///< aligned, origin-relative
  std::uint32_t node{0};
  std::uint32_t incarnation{0};
  TraceRecord record;
};

struct AssembledTrace {
  std::vector<SkewEstimate> skew;
  std::vector<CrashTimeline> crashes;
  std::vector<TimelineEvent> timeline;  ///< empty unless keep_timeline
  std::size_t records{0};
  std::size_t matched_pairs{0};  ///< quadruples used for skew estimation
  /// Matched tx->rx pairs whose aligned order is inverted — 0 means the
  /// alignment never reordered causally-linked records.
  std::size_t causal_violations{0};
};

class TraceAssembler {
 public:
  explicit TraceAssembler(AssemblerOptions options);

  void add_node(TraceNodeInput input);
  void add_crash(std::uint32_t victim, std::int64_t at_ns);

  [[nodiscard]] AssembledTrace assemble() const;

 private:
  AssemblerOptions options_;
  std::vector<TraceNodeInput> inputs_;
  std::vector<std::pair<std::uint32_t, std::int64_t>> crashes_;
};

// --- dump loading ------------------------------------------------------------

/// Loads a `.trace` dump, sniffing the format: binary (kBinaryMagic, as
/// written by the fatal-signal handler) or text (dump_text lines). Torn or
/// corrupt binary records are dropped; nullopt = unreadable file / bad
/// header. Records come back seq-ordered.
std::optional<std::vector<TraceRecord>> load_trace_records(
    const std::string& path);

/// Parses node id and incarnation from a dump filename shaped like
/// `node<i>.g<g>[...]` (the supervisor's report naming).
std::optional<std::pair<std::uint32_t, std::uint32_t>> parse_trace_filename(
    std::string_view filename);

// --- run manifest ------------------------------------------------------------

/// What the supervisor writes next to the dumps so offline assembly knows
/// the run's shape. Plain line-oriented text ("mmrfd-trace-manifest v1").
struct TraceManifest {
  std::uint32_t n{0};
  std::uint64_t origin_ns{0};
  std::uint64_t pacing_ns{0};
  std::uint64_t resend_ns{0};
  struct Crash {
    std::uint32_t victim{0};
    std::int64_t at_ns{0};
    bool restarted{false};
  };
  std::vector<Crash> crashes;
  struct Entry {
    std::uint32_t node{0};
    std::uint32_t incarnation{0};
    std::string file;  ///< relative to the manifest's directory
  };
  std::vector<Entry> traces;
};

inline constexpr std::string_view kTraceManifestName = "trace_manifest.txt";

bool write_manifest(const std::string& path, const TraceManifest& manifest);
std::optional<TraceManifest> load_manifest(const std::string& path);

/// Loads `<dir>/trace_manifest.txt` plus every dump it lists and runs the
/// assembler. nullopt = missing/unreadable manifest.
std::optional<AssembledTrace> assemble_from_dir(const std::string& dir,
                                                bool estimate_skew = true,
                                                bool keep_timeline = false);

// --- emitters ----------------------------------------------------------------

/// Whole-result JSON document (skew, crashes, attribution; timeline
/// included when present).
std::string to_json(const AssembledTrace& trace);

/// Human-readable per-crash breakdown tables.
void write_text(std::ostream& out, const AssembledTrace& trace);

/// Chronological merged event listing (requires keep_timeline).
void write_timeline(std::ostream& out, const AssembledTrace& trace);

}  // namespace mmrfd::obs
